package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"

	"floatprint"
	"floatprint/internal/span"
	"floatprint/interval"
)

// optionsFromQuery maps the common query parameters onto
// floatprint.Options; the library's own validation (Options.norm at
// the API boundary) rejects bad bases, so only syntax is checked here.
func optionsFromQuery(q url.Values) (*floatprint.Options, error) {
	opts := &floatprint.Options{}
	if b := q.Get("base"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("bad base %q", b)
		}
		opts.Base = n
	}
	switch q.Get("mode") {
	case "", "even":
		opts.Reader = floatprint.ReaderNearestEven
	case "unknown":
		opts.Reader = floatprint.ReaderUnknown
	case "away":
		opts.Reader = floatprint.ReaderNearestAway
	case "zero":
		opts.Reader = floatprint.ReaderNearestTowardZero
	default:
		return nil, fmt.Errorf("bad mode %q (want even, unknown, away, zero)", q.Get("mode"))
	}
	switch q.Get("notation") {
	case "", "auto":
		opts.Notation = floatprint.NotationAuto
	case "sci":
		opts.Notation = floatprint.NotationScientific
	case "pos":
		opts.Notation = floatprint.NotationPositional
	default:
		return nil, fmt.Errorf("bad notation %q (want auto, sci, pos)", q.Get("notation"))
	}
	switch q.Get("nomarks") {
	case "", "0", "false":
	case "1", "true":
		opts.NoMarks = true
	default:
		return nil, fmt.Errorf("bad nomarks %q", q.Get("nomarks"))
	}
	backend, err := floatprint.ParseBackend(q.Get("backend"))
	if err != nil {
		return nil, fmt.Errorf("bad backend %q (want auto, grisu, ryu, exact)", q.Get("backend"))
	}
	opts.Backend = backend
	return opts, nil
}

// parseValue reads the v query parameter.  Out-of-range literals keep
// strconv's IEEE semantics (±Inf) instead of failing: a client that
// sends 1e999 gets back what a float64 read of 1e999 is.
func parseValue(q url.Values, bitSize int) (float64, error) {
	return parseFloatParam(q, "v", bitSize)
}

// parseFloatParam reads one named float query parameter with
// parseValue's IEEE range semantics.
func parseFloatParam(q url.Values, name string, bitSize int) (float64, error) {
	vs := q.Get(name)
	if vs == "" {
		return 0, fmt.Errorf("missing %s parameter", name)
	}
	v, err := strconv.ParseFloat(vs, bitSize)
	if err != nil && !errors.Is(err, strconv.ErrRange) {
		return 0, fmt.Errorf("bad %s %q", name, vs)
	}
	return v, nil
}

// writeDigits renders d under opts and writes it as one text line,
// timing the rendering as the request's encode span.
func writeDigits(w http.ResponseWriter, sp *span.Span, d floatprint.Digits, opts *floatprint.Options) {
	enc := sp.StartChild("encode")
	out, err := d.Append(make([]byte, 0, 32), opts)
	if err != nil {
		enc.End()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	enc.SetAttrInt("bytes", int64(len(out)+1))
	enc.End()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(append(out, '\n'))
}

// convRecord allocates a per-conversion algorithm record when the
// conversion span is live, nil otherwise — the traced API twins are
// only worth calling when there is a span to attach the record to.
func convRecord(sp *span.Span) *floatprint.Trace {
	if sp.Recording() {
		return new(floatprint.Trace)
	}
	return nil
}

// handleShortest serves GET /v1/shortest: the free-format (shortest
// round-tripping) rendering of one value.
func (s *Server) handleShortest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sp := span.FromContext(r.Context())
	dec := sp.StartChild("decode")
	q := r.URL.Query()
	opts, err := optionsFromQuery(q)
	bits32 := q.Get("bits") == "32"
	var v float64
	if err == nil {
		if bits32 {
			v, err = parseValue(q, 32)
		} else {
			v, err = parseValue(q, 64)
		}
	}
	dec.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	conv := sp.StartChild("convert")
	var d floatprint.Digits
	if bits32 {
		// The traced twins are 64-bit only; single precision converts
		// through the plain API, span timing still applies.
		conv.SetAttr("bits", "32")
		d, err = floatprint.ShortestDigits32(float32(v), opts)
	} else if rec := convRecord(conv); rec != nil {
		d, err = floatprint.ShortestDigitsTraced(v, opts, rec)
		attachConversion(conv, rec)
	} else {
		d, err = floatprint.ShortestDigits(v, opts)
	}
	conv.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeDigits(w, sp, d, opts)
}

// handleParse serves GET /v1/parse: reads the s query parameter with
// the library's own reader — the certified Eisel–Lemire fast path with
// exact fallback, under the same base/mode options as the print
// endpoints — and responds with the shortest rendering of the parsed
// value under those options.  Out-of-range literals keep IEEE
// semantics: the response is ±Inf's rendering, not an error, matching
// parseValue's treatment of v elsewhere.  bits=32 parses directly to
// single precision (one rounding).
func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sp := span.FromContext(r.Context())
	dec := sp.StartChild("decode")
	q := r.URL.Query()
	opts, err := optionsFromQuery(q)
	in := q.Get("s")
	if err == nil && in == "" {
		err = errors.New("missing s parameter")
	}
	dec.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	conv := sp.StartChild("convert")
	var d floatprint.Digits
	if q.Get("bits") == "32" {
		conv.SetAttr("bits", "32")
		v, perr := floatprint.Parse32(in, opts)
		if perr != nil && !errors.Is(perr, floatprint.ErrRange) {
			conv.End()
			http.Error(w, perr.Error(), http.StatusBadRequest)
			return
		}
		d, err = floatprint.ShortestDigits32(v, opts)
	} else {
		// The parse is this endpoint's conversion of interest — the
		// attached algorithm record describes the read path (fast-path
		// certification, exact fallback), not the response rendering.
		rec := convRecord(conv)
		var v float64
		var perr error
		if rec != nil {
			v, perr = floatprint.ParseTraced(in, opts, rec)
			attachConversion(conv, rec)
		} else {
			v, perr = floatprint.Parse(in, opts)
		}
		if perr != nil && !errors.Is(perr, floatprint.ErrRange) {
			conv.End()
			http.Error(w, perr.Error(), http.StatusBadRequest)
			return
		}
		d, err = floatprint.ShortestDigits(v, opts)
	}
	conv.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeDigits(w, sp, d, opts)
}

// handleInterval serves GET /v1/interval: interval I/O with the
// enclosure guarantee.  With lo= and hi=, it prints the shortest
// decimal interval enclosing [lo, hi] (lower endpoint rounded outward
// down, upper outward up).  With s=[a,b], it reads the text with
// outward rounding — out-of-range endpoints widen rather than fail —
// and responds with the shortest enclosing rendering of the resulting
// float64 interval.  Exactly one of the two forms is required.  Either
// way the response interval encloses the request's, so chained
// print/parse hops through the service only ever widen.
func (s *Server) handleInterval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sp := span.FromContext(r.Context())
	dec := sp.StartChild("decode")
	q := r.URL.Query()
	opts, err := optionsFromQuery(q)
	in := q.Get("s")
	hasPair := q.Get("lo") != "" || q.Get("hi") != ""
	if err == nil && (in == "") == !hasPair {
		err = errors.New("exactly one of s=[lo,hi] or lo=&hi= is required")
	}
	var iv interval.Interval
	if err == nil {
		if in != "" {
			iv, err = interval.Parse(in, opts)
		} else {
			var lo, hi float64
			if lo, err = parseFloatParam(q, "lo", 64); err == nil {
				if hi, err = parseFloatParam(q, "hi", 64); err == nil {
					iv, err = interval.New(lo, hi)
				}
			}
		}
	}
	dec.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Interval conversion has no traced twin; the span still times it.
	conv := sp.StartChild("convert")
	out, err := interval.AppendShortest(make([]byte, 0, 64), iv, opts)
	conv.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(append(out, '\n'))
}

// handleFixed serves GET /v1/fixed: fixed-format rendering at n
// significant digits (n=...) or at an absolute digit position
// (pos=...), with '#' marks past the point of significance unless
// nomarks is set.
func (s *Server) handleFixed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sp := span.FromContext(r.Context())
	dec := sp.StartChild("decode")
	q := r.URL.Query()
	opts, err := optionsFromQuery(q)
	ns, ps := q.Get("n"), q.Get("pos")
	if err == nil && (ns == "") == (ps == "") {
		err = errors.New("exactly one of n (significant digits) or pos (absolute position) is required")
	}
	var n, pos int
	var v float64
	bits32 := q.Get("bits") == "32"
	if err == nil {
		switch {
		case ns != "":
			if n, err = strconv.Atoi(ns); err != nil {
				err = fmt.Errorf("bad n %q", ns)
			} else if bits32 {
				v, err = parseValue(q, 32)
			} else {
				v, err = parseValue(q, 64)
			}
		default:
			if pos, err = strconv.Atoi(ps); err != nil {
				err = fmt.Errorf("bad pos %q", ps)
			} else {
				v, err = parseValue(q, 64)
			}
		}
	}
	dec.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	conv := sp.StartChild("convert")
	rec := convRecord(conv)
	var d floatprint.Digits
	switch {
	case ns != "" && bits32:
		conv.SetAttr("bits", "32")
		d, err = floatprint.FixedDigits32(float32(v), n, opts)
	case ns != "" && rec != nil:
		d, err = floatprint.FixedDigitsTraced(v, n, opts, rec)
		attachConversion(conv, rec)
	case ns != "":
		d, err = floatprint.FixedDigits(v, n, opts)
	case rec != nil:
		d, err = floatprint.FixedPositionDigitsTraced(v, pos, opts, rec)
		attachConversion(conv, rec)
	default:
		d, err = floatprint.FixedPositionDigits(v, pos, opts)
	}
	conv.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeDigits(w, sp, d, opts)
}

// batchBlockValues is how many input values accumulate before a block
// is handed to the pool: large enough that the shard pipeline has real
// work per block, small enough that in-flight memory stays bounded
// (one block slab plus the pool's 2×shards chunk buffers) no matter
// how long the request stream is.
const batchBlockValues = 65536

// handleBatch serves POST /v1/batch: a stream of float64 values in
// (NDJSON lines, or packed little-endian binary with Content-Type
// application/octet-stream), the shortest rendering of each value out,
// one per line, in input order.  Conversion and response writing
// overlap through batch.Pool.WriteAll, and the request context —
// carrying both the per-request timeout and client disconnect —
// cancels mid-stream conversion.
//
// Input errors before the first output byte produce a 4xx; after
// output has started the handler aborts the connection (the net/http
// abort sentinel), so a malformed tail can never masquerade as a
// complete response.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)

	st := &batchStream{s: s, w: w, r: r}
	// One convert span covers the whole stream: decode and conversion
	// interleave block by block, so per-stage children would mostly
	// measure each other.  The deferred End keeps the span honest on
	// the abort path (st.fail panics after output has started).
	conv := span.FromContext(r.Context()).StartChild("convert")
	defer func() {
		conv.SetAttrInt("values", st.values)
		conv.End()
	}()
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		conv.SetAttr("format", "binary")
		err = st.runBinary(body)
	} else {
		conv.SetAttr("format", "ndjson")
		err = st.runNDJSON(body)
	}
	if err != nil {
		st.fail(err)
	}
}

// batchStream is the per-request state of a streaming batch: the
// accumulating block and whether output has started (which decides
// between a clean 4xx and a connection abort on failure).
type batchStream struct {
	s       *Server
	w       http.ResponseWriter
	r       *http.Request
	block   []float64
	started bool
	values  int64 // values accepted so far, for the convert span
}

// statusError carries the HTTP status a pre-stream failure should map
// to.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// fail reports err: as an HTTP status if nothing has been written yet,
// otherwise by aborting the connection.
func (st *batchStream) fail(err error) {
	if st.started {
		st.s.log.Printf("serve: [%s] aborting batch stream: %v", RequestID(st.r.Context()), err)
		panic(http.ErrAbortHandler)
	}
	var se *statusError
	if errors.As(err, &se) {
		http.Error(st.w, se.msg, se.code)
		return
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(st.w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		http.Error(st.w, "request body read timed out", http.StatusRequestTimeout)
		return
	}
	if errors.Is(err, st.r.Context().Err()) && st.r.Context().Err() != nil {
		http.Error(st.w, "request timed out or canceled", http.StatusServiceUnavailable)
		return
	}
	http.Error(st.w, err.Error(), http.StatusBadRequest)
}

// push adds one value, flushing the block to the pool when full.
func (st *batchStream) push(v float64) error {
	if st.block == nil {
		st.block = make([]float64, 0, batchBlockValues)
	}
	st.block = append(st.block, v)
	st.values++
	if len(st.block) == cap(st.block) {
		return st.flush()
	}
	return nil
}

// flush streams the accumulated block through the pool and flushes the
// response writer, so clients observe output as it is produced.
func (st *batchStream) flush() error {
	if len(st.block) == 0 {
		return nil
	}
	if !st.started {
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.started = true
	}
	n, err := st.s.pool.WriteAll(st.r.Context(), st.block, st.w)
	st.block = st.block[:0]
	if err != nil {
		if n > 0 {
			// Partial output reached the wire: only an abort is honest.
			st.s.log.Printf("serve: [%s] aborting batch stream mid-write: %v", RequestID(st.r.Context()), err)
			panic(http.ErrAbortHandler)
		}
		return err
	}
	if f, ok := st.w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// finish flushes the final partial block and, for an empty result,
// still commits a 200 with an empty body.
func (st *batchStream) finish() error {
	if err := st.flush(); err != nil {
		return err
	}
	if !st.started {
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
	}
	return nil
}

// runNDJSON consumes newline-delimited numeric values.
func (st *batchStream) runNDJSON(body io.Reader) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil && !errors.Is(err, strconv.ErrRange) {
			return &statusError{http.StatusBadRequest, fmt.Sprintf("line %d: bad value %q", line, text)}
		}
		if err := st.push(v); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return st.finish()
}

// runBinary consumes packed little-endian float64s.
func (st *batchStream) runBinary(body io.Reader) error {
	buf := make([]byte, 8*4096)
	rem := 0
	for {
		n, err := io.ReadFull(body, buf[rem:])
		n += rem
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if n%8 != 0 {
				return &statusError{http.StatusBadRequest,
					fmt.Sprintf("body length not a multiple of 8 (%d trailing bytes)", n%8)}
			}
		} else if err != nil {
			return err
		}
		for i := 0; i+8 <= n; i += 8 {
			if perr := st.push(math.Float64frombits(binary.LittleEndian.Uint64(buf[i:]))); perr != nil {
				return perr
			}
		}
		rem = n % 8
		if rem > 0 {
			copy(buf, buf[n-rem:n])
		}
		if err != nil { // EOF with a whole number of values
			return st.finish()
		}
	}
}

// handleBatchParse serves POST /v1/batch-parse: the ingestion inverse
// of /v1/batch.  Separator-delimited decimal text in (newlines, commas,
// CR, spaces, tabs — the batch grammar of floatprint.BatchSep), packed
// little-endian float64s out, in input order, streamed in bounded
// memory through batch.Pool.ParseAll's block-at-a-time engine.  Every
// value is bit-identical to floatprint.Parse on the same token, with
// IEEE range semantics (out-of-range tokens produce ±Inf, not errors).
//
// A malformed token before the first output block produces a 400 whose
// text carries the stream-level record index and byte offset; after
// output has started the handler aborts the connection, the same
// honesty contract as /v1/batch.
func (s *Server) handleBatchParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	st := &batchStream{s: s, w: w, r: r}
	pw := &packedWriter{st: st}
	conv := span.FromContext(r.Context()).StartChild("convert")
	var parsed int64
	defer func() {
		conv.SetAttrInt("values", parsed)
		conv.End()
	}()
	var err error
	if parsed, err = s.pool.ParseAll(r.Context(), body, pw); err != nil {
		st.fail(err)
		return
	}
	if err := pw.commit(); err != nil {
		return // the client went away mid-write; nothing left to report
	}
	if !st.started {
		// No values at all: still a committed, well-typed empty response.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
	}
}

// packedWriter is handleBatchParse's response sink.  ParseAll writes
// the failing block's parsed prefix before reporting a malformed token,
// so the first block's bytes are held back until a second block (or a
// clean finish) proves the stream: a bad token in block one still maps
// to a located 400, the same first-block buffering /v1/batch gets from
// its value accumulator, at a bounded cost (8 output bytes per value of
// one input block).  From the second block on, each write streams with
// a flush.
type packedWriter struct {
	st        *batchStream
	first     []byte
	haveFirst bool
	committed bool
}

func (pw *packedWriter) Write(p []byte) (int, error) {
	if !pw.committed && !pw.haveFirst {
		pw.first = append(pw.first, p...)
		pw.haveFirst = true
		return len(p), nil
	}
	if err := pw.commit(); err != nil {
		return 0, err
	}
	return pw.send(p)
}

// commit releases the held first block.  Write calls it when a second
// block arrives; the handler calls it on clean completion.
func (pw *packedWriter) commit() error {
	pw.committed = true
	if !pw.haveFirst {
		return nil
	}
	pw.haveFirst = false
	_, err := pw.send(pw.first)
	pw.first = nil
	return err
}

func (pw *packedWriter) send(p []byte) (int, error) {
	st := pw.st
	if !st.started {
		st.w.Header().Set("Content-Type", "application/octet-stream")
		st.started = true
	}
	n, err := st.w.Write(p)
	if err == nil {
		if f, ok := st.w.(http.Flusher); ok {
			f.Flush()
		}
	}
	return n, err
}

// handleHealthz serves liveness; it bypasses the limiter so health
// checks keep passing while the service sheds load (shedding is the
// designed overload behavior, not ill health).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}
