package floatprint

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fastpath"
	"floatprint/internal/fpformat"
	"floatprint/internal/grisu"
)

var readerModes = []core.ReaderMode{
	core.ReaderUnknown,
	core.ReaderNearestEven,
	core.ReaderNearestAway,
	core.ReaderNearestTowardZero,
}

// randomFinite draws a positive finite float64 from uniformly random bit
// patterns, covering normals and denormals across the full exponent range.
func randomFinite(rng *rand.Rand) float64 {
	for {
		v := math.Float64frombits(rng.Uint64())
		v = math.Abs(v)
		if v != 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			return v
		}
	}
}

// The grisu fast path claims mode-independence: a certified result is the
// shortest digit string strictly inside the rounding range with margin, so
// it must match the exact algorithm's output under *all four* reader
// rounding modes (the certification comment in floatprint.go).  Pin the
// claim with a randomized differential test.
func TestGrisuMatchesExactAllReaderModes(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 400
	}
	rng := rand.New(rand.NewSource(42))
	certified := 0
	for i := 0; i < n; i++ {
		v := randomFinite(rng)
		digits, k, ok := grisu.Shortest(v)
		if !ok {
			continue
		}
		certified++
		val := fpformat.DecodeFloat64(v)
		for _, mode := range readerModes {
			res, err := core.FreeFormat(val, 10, core.ScalingEstimate, mode)
			if err != nil {
				t.Fatalf("FreeFormat(%g, %v): %v", v, mode, err)
			}
			if res.K != k || !bytes.Equal(res.Digits, digits) {
				t.Fatalf("grisu(%b) = %v ×10^%d, exact under %v = %v ×10^%d",
					v, digits, k, mode, res.Digits, res.K)
			}
		}
	}
	if certified < n/2 {
		t.Errorf("only %d/%d values certified; fast path effectively disabled", certified, n)
	}
}

// The same pin for Gay's fixed-format fast path: a certified TryFixed
// result must match the exact algorithm under every reader mode (certified
// results are strictly inside every boundary, where the modes differ).
func TestGayFixedMatchesExactAllReaderModes(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 200
	}
	rng := rand.New(rand.NewSource(43))
	certified := 0
	for i := 0; i < n; i++ {
		v := randomFinite(rng)
		digitCount := 1 + rng.Intn(17)
		digits, k, ok := fastpath.TryFixed(v, digitCount)
		if !ok {
			continue
		}
		certified++
		val := fpformat.DecodeFloat64(v)
		for _, mode := range readerModes {
			res, err := core.FixedFormatRelative(val, 10, mode, digitCount)
			if err != nil {
				t.Fatalf("FixedFormatRelative(%g, %v, %d): %v", v, mode, digitCount, err)
			}
			if res.K != k || !bytes.Equal(res.Digits, digits) || res.NSig != digitCount {
				t.Fatalf("fastpath(%b, n=%d) = %v ×10^%d, exact under %v = %v ×10^%d (nsig %d)",
					v, digitCount, digits, k, mode, res.Digits, res.K, res.NSig)
			}
		}
	}
	if certified < n/4 {
		t.Errorf("only %d/%d fixed conversions certified; fast path effectively disabled", certified, n)
	}
}

// TestConcurrentConversionsRace is the correctness twin of the parallel
// benchmarks: many goroutines hammer the shortest and fixed paths — and
// bases whose power caches were not preloaded, forcing concurrent
// copy-on-grow — while verifying every result.  Run it under -race (the CI
// workflow does) to certify the lock-free power cache and the pooled
// conversion state.
func TestConcurrentConversionsRace(t *testing.T) {
	workers := 8
	perWorker := 400
	if testing.Short() {
		perWorker = 80
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 0, 64)
			for i := 0; i < perWorker; i++ {
				v := randomFinite(rng)
				// Zero-alloc append path against strconv's reader.
				buf = AppendShortest(buf[:0], v)
				if got, err := strconv.ParseFloat(string(buf), 64); err != nil || got != v {
					t.Errorf("AppendShortest(%b) = %q does not read back (%v)", v, buf, err)
					return
				}
				// Exact path in an odd base: base 3 was never preloaded, so
				// this grows its power cache concurrently (copy-on-grow).
				d, err := ShortestDigits(v, &Options{Base: 3})
				if err != nil {
					t.Errorf("ShortestDigits(%b, base 3): %v", v, err)
					return
				}
				if rt, err := d.Value(); err != nil || rt != v {
					t.Errorf("base-3 round trip of %b failed: got %v (%v)", v, rt, err)
					return
				}
				// Fixed format through the public API.
				if _, err := FixedDigits(v, 1+rng.Intn(20), nil); err != nil {
					t.Errorf("FixedDigits(%b): %v", v, err)
					return
				}
			}
		}(int64(1000 + w))
	}
	wg.Wait()
}
