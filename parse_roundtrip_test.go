package floatprint

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// roundTripValues is the value set for the fixed-format round-trip
// property: hand-picked boundary cases plus seeded random bit patterns,
// with the negation of each.
func roundTripValues(t *testing.T) []float64 {
	t.Helper()
	vals := []float64{
		0,
		0.1,
		1.0 / 3.0,
		math.Pi,
		1e23,   // the classic shortest-vs-nearest pivot
		5e-324, // smallest denormal: 751 significant decimal digits
		math.SmallestNonzeroFloat64 * 9871,
		math.MaxFloat64,
		math.Nextafter(1, 2),    // 1 + 2^-52
		2.2250738585072011e-308, // the strtod-loop value, just under the normal threshold
		9007199254740993,        // 2^53 + 1: not representable, rounds
		6.62607015e-34,
	}
	rng := rand.New(rand.NewSource(0x42d))
	for i := 0; i < 12; i++ {
		v := math.Float64frombits(rng.Uint64())
		for math.IsNaN(v) || math.IsInf(v, 0) {
			v = math.Float64frombits(rng.Uint64())
		}
		vals = append(vals, v)
	}
	neg := make([]float64, 0, 2*len(vals))
	for _, v := range vals {
		neg = append(neg, v, -v)
	}
	return neg
}

// TestParseRoundTripsFixedMarks is the property behind the '#'
// convention: fixed-format output — insignificance marks included — must
// parse back to the exact same float64 when the same Options (base and
// assumed reader rounding) are used on both sides, for every base 2–36
// and all four reader modes.  Parse reads '#' as zeros; the printer
// guarantees the significant prefix already pins v down under the
// declared reader, so the zero-filled tail cannot move the result.
func TestParseRoundTripsFixedMarks(t *testing.T) {
	values := roundTripValues(t)
	modes := []ReaderRounding{ReaderNearestEven, ReaderUnknown, ReaderNearestAway, ReaderNearestTowardZero}

	const n = 70 // enough positions that nearly every output carries '#' marks
	total, marked := 0, 0
	for base := 2; base <= 36; base++ {
		for _, mode := range modes {
			opts := &Options{Base: base, Reader: mode}
			for _, v := range values {
				s, err := FormatFixed(v, n, opts)
				if err != nil {
					t.Fatalf("FormatFixed(%g, %d, base=%d, %v): %v", v, n, base, mode, err)
				}
				total++
				if strings.ContainsRune(s, '#') {
					marked++
				}
				got, err := Parse(s, opts)
				if err != nil {
					t.Fatalf("Parse(%q, base=%d, %v): %v", s, base, mode, err)
				}
				if math.Float64bits(got) != math.Float64bits(v) {
					t.Fatalf("base=%d %v: Parse(FormatFixed(%b)) = %b (%q)", base, mode, v, got, s)
				}
			}
		}
	}
	// The property must actually be exercising marked output: with 70
	// positions only the longest expansions (deep denormals in small
	// bases) fill every digit.
	if marked < total*4/5 {
		t.Fatalf("only %d of %d outputs contained '#' marks; property under-exercised", marked, total)
	}
}

// TestParseRoundTripsBoundaries pins the subnormal-frontier and signed-
// zero cases the fast parse path is most likely to get wrong (it
// declines them all to the exact reader; this test proves the pipeline
// still lands on the exact bits): Parse(Shortest(v)) == v through every
// reader mode, for shortest and for '#'-marked fixed output.
func TestParseRoundTripsBoundaries(t *testing.T) {
	boundaries := []float64{
		math.Copysign(0, -1),                     // negative zero
		math.SmallestNonzeroFloat64,              // 5e-324, smallest subnormal
		math.Float64frombits(0x000FFFFFFFFFFFFF), // largest subnormal
		math.Float64frombits(0x0010000000000000), // 2.2250738585072014e-308, smallest normal
		-math.SmallestNonzeroFloat64,
		-math.Float64frombits(0x000FFFFFFFFFFFFF),
		-math.Float64frombits(0x0010000000000000),
	}
	modes := []ReaderRounding{ReaderNearestEven, ReaderUnknown, ReaderNearestAway, ReaderNearestTowardZero}
	for _, mode := range modes {
		opts := &Options{Reader: mode}
		for _, v := range boundaries {
			s, err := Format(v, opts)
			if err != nil {
				t.Fatalf("%v: Format(%b): %v", mode, v, err)
			}
			got, err := Parse(s, opts)
			if err != nil {
				t.Fatalf("%v: Parse(Format(%b) = %q): %v", mode, v, s, err)
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("%v: Parse(Format(%b)) = %b via %q", mode, v, got, s)
			}

			f, err := FormatFixed(v, 40, opts)
			if err != nil {
				t.Fatalf("%v: FormatFixed(%b, 40): %v", mode, v, err)
			}
			got, err = Parse(f, opts)
			if err != nil {
				t.Fatalf("%v: Parse(FormatFixed(%b) = %q): %v", mode, v, f, err)
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("%v: Parse(FormatFixed(%b)) = %b via %q", mode, v, got, f)
			}
		}
	}

	// Negative zero must round-trip with its sign, not as +0.
	for _, s := range []string{"-0", "-0.0", "-0e10", Shortest(math.Copysign(0, -1))} {
		got, err := Parse(s, nil)
		if err != nil || math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
			t.Fatalf("Parse(%q) = %#x, %v; want negative zero", s, math.Float64bits(got), err)
		}
	}
	for _, s := range []string{"-0", "-0.0", "-0e10"} {
		got, err := Parse32(s, nil)
		if err != nil || math.Float32bits(got) != 1<<31 {
			t.Fatalf("Parse32(%q) = %#x, %v; want negative zero", s, math.Float32bits(got), err)
		}
	}
}

// TestParseRoundTripsFixedNoMarks checks the same property with NoMarks
// set: insignificant positions print as '0' instead of '#', and the
// output still parses back bit-identically.
func TestParseRoundTripsFixedNoMarks(t *testing.T) {
	values := roundTripValues(t)
	for _, base := range []int{2, 10, 16, 36} {
		opts := &Options{Base: base, NoMarks: true}
		for _, v := range values {
			s, err := FormatFixed(v, 70, opts)
			if err != nil {
				t.Fatalf("FormatFixed(%g, base=%d): %v", v, base, err)
			}
			if strings.ContainsRune(s, '#') {
				t.Fatalf("NoMarks output contains '#': %q", s)
			}
			got, err := Parse(s, opts)
			if err != nil {
				t.Fatalf("Parse(%q, base=%d): %v", s, base, err)
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("base=%d: Parse(FormatFixed(%b)) = %b (%q)", base, v, got, s)
			}
		}
	}
}
