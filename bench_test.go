package floatprint

// Benchmark harness regenerating the paper's evaluation (see DESIGN.md §6
// and EXPERIMENTS.md):
//
//   Table 2 — BenchmarkTable2Scaling*: the three scaling algorithms over
//             the Schryer corpus, base 10, free format.
//   Table 3 — BenchmarkTable3*: free format vs straightforward 17-digit
//             fixed format vs simulated printf.
//   §5 stat / ablations — digit-count metric and estimator accuracy are
//             reported as custom benchmark metrics.
//
// Absolute times differ from the 1996 hardware; the claims under test are
// the *ratios* (iterative ≫ estimate, free ≈ 1.66× fixed).  Run
// `go run ./cmd/fpbench -all` for the full-corpus table reproduction with
// pass/fail shape checks.

import (
	"strconv"
	"sync"
	"testing"

	"floatprint/internal/baseline"
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/gay"
	"floatprint/internal/grisu"
	"floatprint/internal/reader"
	"floatprint/internal/ryu"
	"floatprint/internal/schryer"
)

const benchCorpusSize = 16384

var (
	benchOnce   sync.Once
	benchFloats []float64
	benchValues []fpformat.Value
)

func benchCorpus() ([]float64, []fpformat.Value) {
	benchOnce.Do(func() {
		benchFloats = schryer.CorpusN(benchCorpusSize)
		benchValues = make([]fpformat.Value, len(benchFloats))
		for i, f := range benchFloats {
			benchValues[i] = fpformat.DecodeFloat64(f)
		}
	})
	return benchFloats, benchValues
}

func benchScaling(b *testing.B, s core.Scaling) {
	_, values := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FreeFormat(values[i%len(values)], 10, s, core.ReaderNearestEven); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 2, row 1: Steele & White's iterative scaling (paper: ~145x).
func BenchmarkTable2ScalingIterative(b *testing.B) { benchScaling(b, core.ScalingIterative) }

// Table 2, row 2: floating-point logarithm scaling (paper: ~1.2x).
func BenchmarkTable2ScalingFloatLog(b *testing.B) { benchScaling(b, core.ScalingFloatLog) }

// Table 2, row 3: the paper's estimator with penalty-free fixup (baseline 1x).
func BenchmarkTable2ScalingEstimate(b *testing.B) { benchScaling(b, core.ScalingEstimate) }

// Table 3, column "free-format": shortest output, nearest-even reader.
func BenchmarkTable3FreeFormat(b *testing.B) {
	_, values := benchCorpus()
	totalDigits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			b.Fatal(err)
		}
		totalDigits += len(r.Digits)
	}
	b.ReportMetric(float64(totalDigits)/float64(b.N), "digits/op") // paper §5: 15.2
}

// Table 3, column "fixed-format": straightforward 17 significant digits.
func BenchmarkTable3Fixed17(b *testing.B) {
	_, values := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FixedDigits(values[i%len(values)], 10, 17); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 3, column "printf": simulated x87-era printf at 17 digits.
func BenchmarkTable3NaivePrintf(b *testing.B) {
	floats, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.NaivePrintf(floats[i%len(floats)], 17)
	}
}

// Ablation A (DESIGN.md): estimator accuracy, ours vs Gay's, reported as
// exact-hit percentages alongside the cost of each estimate call.
func BenchmarkAblationEstimatorBurgerDybvig(b *testing.B) {
	floats, values := benchCorpus()
	exact := 0
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += core.EstimateScale(values[i%len(values)], 10)
	}
	b.StopTimer()
	_ = sink
	for i, v := range values {
		k, err := core.ExactScale(v, 10, core.ReaderNearestEven)
		if err != nil {
			b.Fatal(err)
		}
		if core.EstimateScale(v, 10) == k {
			exact++
		}
		_ = floats[i]
	}
	b.ReportMetric(100*float64(exact)/float64(len(values)), "%exact")
}

func BenchmarkAblationEstimatorGay(b *testing.B) {
	floats, values := benchCorpus()
	exact := 0
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += gay.EstimateCeilLog10(floats[i%len(floats)])
	}
	b.StopTimer()
	_ = sink
	for i, f := range floats {
		k, err := core.ExactScale(values[i], 10, core.ReaderNearestEven)
		if err != nil {
			b.Fatal(err)
		}
		if gay.EstimateCeilLog10(f) == k {
			exact++
		}
	}
	b.ReportMetric(100*float64(exact)/float64(len(floats)), "%exact")
}

// Three generations of shortest-printing algorithms plus Go's strconv:
// the paper's exact algorithm, Grisu3 (with exact fallback), and Ryū.
func BenchmarkGenerationsDragonExact(b *testing.B) {
	_, values := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerationsGrisuFallback(b *testing.B) {
	floats, values := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := grisu.Shortest(floats[i%len(floats)]); !ok {
			if _, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGenerationsRyu(b *testing.B) {
	floats, _ := benchCorpus()
	var buf [ryu.BufLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ryu.ShortestInto(buf[:], floats[i%len(floats)])
	}
}

func BenchmarkGenerationsRyuFallback(b *testing.B) {
	floats, values := benchCorpus()
	var buf [ryu.BufLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ryu.ShortestInto(buf[:], floats[i%len(floats)]); !ok {
			if _, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Public-API end-to-end benchmarks, with Go's strconv for context.
func BenchmarkShortest(b *testing.B) {
	floats, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shortest(floats[i%len(floats)])
	}
}

// AppendShortest on values the default fast backend serves: the headline
// zero-allocation claim.  The registry routes the default options to ryu,
// so the corpus is filtered to values ryu serves (~99.98%) and allocs/op
// must report exactly 0.
func BenchmarkAppendShortestCertified(b *testing.B) {
	floats, _ := benchCorpus()
	certified := make([]float64, 0, len(floats))
	var kb [ryu.BufLen]byte
	for _, f := range floats {
		if _, _, ok := ryu.ShortestInto(kb[:], f); ok {
			certified = append(certified, f)
		}
	}
	if len(certified) == 0 {
		b.Fatal("no certified values in corpus")
	}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendShortest(buf[:0], certified[i%len(certified)])
	}
}

// AppendShortest over the unfiltered corpus (includes the exact-path
// fallback values — ryu's rare exact-halfway declines — so allocs/op
// rounds to 0 but is not contractually exact there).
func BenchmarkAppendShortest(b *testing.B) {
	floats, _ := benchCorpus()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendShortest(buf[:0], floats[i%len(floats)])
	}
}

// TestAppendShortestZeroAlloc pins the zero-allocation contract of the
// append fast path, under both the default registry routing and an
// explicit ryu selection: a served value must never touch the heap.  The
// benchmarks above report allocations but cannot fail on them; this can.
func TestAppendShortestZeroAlloc(t *testing.T) {
	floats, _ := benchCorpus()
	served := make([]float64, 0, 256)
	var kb [ryu.BufLen]byte
	for _, f := range floats {
		if _, _, ok := ryu.ShortestInto(kb[:], f); ok {
			served = append(served, f)
			if len(served) == cap(served) {
				break
			}
		}
	}
	buf := make([]byte, 0, 64)
	opts := &Options{Backend: BackendRyu}
	if n := testing.AllocsPerRun(100, func() {
		for _, v := range served {
			buf = AppendShortest(buf[:0], v)
			buf = AppendShortestWith(buf[:0], v, opts)
		}
	}); n != 0 {
		t.Fatalf("append fast path allocated %.2f times per run, want 0", n)
	}
}

// Concurrent-regime benchmarks (Gareau & Lemire's experimental-review point
// that shortest-conversion measurements must cover the parallel,
// allocation-aware case).  With the lock-free power cache and pooled
// conversion state these scale near-linearly with GOMAXPROCS; run with
// -cpu=1,2,4,... to see the scaling curve.
func BenchmarkShortestParallel(b *testing.B) {
	floats, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 0, 64)
		i := 0
		for pb.Next() {
			buf = AppendShortest(buf[:0], floats[i%len(floats)])
			i++
		}
	})
}

// The fixed-format twin of BenchmarkShortestParallel: 17 significant
// digits through the public API (Gay fast path plus exact fallback).
func BenchmarkFixedParallel(b *testing.B) {
	floats, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 0, 64)
		i := 0
		for pb.Next() {
			buf = AppendFixed(buf[:0], floats[i%len(floats)], 17)
			i++
		}
	})
}

// The exact algorithm alone under contention: every iteration takes the
// big-integer path, hammering the power cache and the state pool.
func BenchmarkFreeFormatParallel(b *testing.B) {
	_, values := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkStrconvShortestReference(b *testing.B) {
	floats, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strconv.FormatFloat(floats[i%len(floats)], 'e', -1, 64)
	}
}

func BenchmarkFixedPosition(b *testing.B) {
	floats, _ := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := floats[i%len(floats)]
		if f > 1e18 || f < 1e-18 {
			f = 1234.5678
		}
		FixedPosition(f, -6)
	}
}

func BenchmarkParse(b *testing.B) {
	floats, _ := benchCorpus()
	strs := make([]string, 512)
	for i := range strs {
		strs[i] = Shortest(floats[i*7%len(floats)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strs[i%len(strs)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParseStrings renders the whole benchmark corpus to shortest
// strings once, shared by the parse-path benchmarks so fast path and
// exact reader run over identical input.
var (
	benchParseOnce sync.Once
	benchParseStrs []string
)

func benchParseCorpus() []string {
	benchParseOnce.Do(func() {
		floats, _ := benchCorpus()
		benchParseStrs = make([]string, len(floats))
		for i, f := range floats {
			benchParseStrs[i] = Shortest(f)
		}
	})
	return benchParseStrs
}

// BenchmarkParse_FastPath is the headline read-side number: the public
// Parse over shortest corpus strings, where the Eisel–Lemire path
// certifies ~99.99% of inputs.  The acceptance bar is ≥3× the exact
// reader below.
func BenchmarkParse_FastPath(b *testing.B) {
	strs := benchParseCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strs[i%len(strs)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse_ExactReader is the fallback baseline: the big-integer
// reader alone on the same strings.
func BenchmarkParse_ExactReader(b *testing.B) {
	strs := benchParseCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reader.Parse(strs[i%len(strs)], 10, fpformat.Binary64, reader.NearestEven); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrconvParseReference(b *testing.B) {
	floats, _ := benchCorpus()
	strs := make([]string, 512)
	for i := range strs {
		strs[i] = strconv.FormatFloat(floats[i*7%len(floats)], 'e', -1, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strconv.ParseFloat(strs[i%len(strs)], 64); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchParseInput renders 65536 corpus values as NDJSON once,
// shared by the batch-parse benchmarks so all three contenders scan
// identical bytes.  SetBytes makes `go test -bench` report MB/s — the
// figure the CI throughput floor gates on.
var (
	benchBatchParseOnce sync.Once
	benchBatchParseIn   []byte
)

func benchBatchParseInput() []byte {
	benchBatchParseOnce.Do(func() {
		for _, v := range schryer.CorpusN(65536) {
			benchBatchParseIn = AppendShortest(benchBatchParseIn, v)
			benchBatchParseIn = append(benchBatchParseIn, '\n')
		}
	})
	return benchBatchParseIn
}

// BenchmarkBatchParse_Block is the headline ingestion number: the
// block-at-a-time scanner (SWAR 8-digit chunks into the Eisel–Lemire
// certifier) over one contiguous NDJSON range, zero allocations steady
// state.  The acceptance bar is ≥300 MB/s on the CI runner.
func BenchmarkBatchParse_Block(b *testing.B) {
	in := benchBatchParseInput()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	var dst []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = AppendParseBatch(dst[:0], in)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchParse_PerValue is the same tokens through the public
// per-value Parse — what the block engine must beat to earn its keep.
func BenchmarkBatchParse_PerValue(b *testing.B) {
	in := benchBatchParseInput()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < len(in); {
			k := j
			for k < len(in) && in[k] != '\n' {
				k++
			}
			if k > j {
				if _, err := Parse(string(in[j:k]), nil); err != nil {
					b.Fatal(err)
				}
			}
			j = k + 1
		}
	}
}

// BenchmarkBatchParse_Strconv is the standard-library baseline over the
// same tokenization.
func BenchmarkBatchParse_Strconv(b *testing.B) {
	in := benchBatchParseInput()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < len(in); {
			k := j
			for k < len(in) && in[k] != '\n' {
				k++
			}
			if k > j {
				if _, err := strconv.ParseFloat(string(in[j:k]), 64); err != nil {
					b.Fatal(err)
				}
			}
			j = k + 1
		}
	}
}
